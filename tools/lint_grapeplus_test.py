#!/usr/bin/env python3
"""Fixture tests for tools/lint_grapeplus.py (a ctest entry).

Each rule gets a positive fixture (violating code → must be flagged) and a
negative fixture (conforming code → must pass). Fixtures are written into a
synthetic repo tree under a temp dir so the linter runs exactly as it does
against the real tree.
"""

from __future__ import annotations

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lint_grapeplus as lint  # noqa: E402


OBSERVABILITY_MD = """# Observability

| name | type |
| --- | --- |
| `runtime.pool.threads` | gauge |
| `a.b.hits` / `.misses` | gauge |
| `perf.<phase>.cycles` / `.ipc` | gauge |

Kinds: `superstep`, `phase`.
"""


class LintFixtureCase(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.root = self.tmp.name
        os.makedirs(os.path.join(self.root, "src"))
        os.makedirs(os.path.join(self.root, "tests"))
        os.makedirs(os.path.join(self.root, "docs"))
        self.write("docs/OBSERVABILITY.md", OBSERVABILITY_MD)

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, rpath, content):
        path = os.path.join(self.root, rpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        return path

    def lint_file(self, rpath, content, checker):
        path = self.write(rpath, content)
        return checker(self.root, path, open(path, encoding="utf-8").read())

    def rules(self, findings):
        return [f.rule for f in findings]

    # ------------------------------------------------------------ R1 ----

    def test_r1_flags_bare_memory_order(self):
        findings = self.lint_file("src/a.cc", """
void f(std::atomic<int>& a) {
  a.store(1, std::memory_order_release);
}
""", lint.check_order_comments)
        self.assertEqual(self.rules(findings), ["grape-lint-order-comment"])

    def test_r1_accepts_adjacent_comment(self):
        findings = self.lint_file("src/b.cc", """
void f(std::atomic<int>& a) {
  // order: release — publishes the init to readers.
  a.store(1, std::memory_order_release);
  a.store(2, std::memory_order_release);  // order: same as above
}

bool g(std::atomic<int>& a) {
  int expected = 0;
  return a.compare_exchange_weak(expected, 1, std::memory_order_acquire);
  // order: acquire — the line directly below the use also counts.
}
""", lint.check_order_comments)
        self.assertEqual(findings, [])

    def test_r1_ignores_commented_out_code(self):
        findings = self.lint_file("src/c.cc", """
// a.store(1, std::memory_order_release);
/* a.load(std::memory_order_acquire); */
""", lint.check_order_comments)
        self.assertEqual(findings, [])

    def test_r1_comment_too_far_above(self):
        findings = self.lint_file("src/d.cc", """
void f(std::atomic<int>& a) {
  // order: release — too far from the use.
  int x = 0;
  int y = 1;
  int z = 2;
  a.store(x + y + z, std::memory_order_release);
}
""", lint.check_order_comments)
        self.assertEqual(self.rules(findings), ["grape-lint-order-comment"])

    # ------------------------------------------------------------ R2 ----

    def test_r2_flags_new_delete_malloc(self):
        findings = self.lint_file("src/alloc.cc", """
void f() {
  int* p = new int[4];
  delete[] p;
  void* q = malloc(16);
  free(q);
}
""", lint.check_raw_alloc)
        self.assertEqual(len(findings), 4)  # new, delete, malloc, free
        self.assertTrue(all(r == "grape-lint-raw-alloc"
                            for r in self.rules(findings)))

    def test_r2_allows_deleted_functions_and_containers(self):
        findings = self.lint_file("src/clean.cc", """
struct S {
  S(const S&) = delete;
  S& operator=(const S&) = delete;
};
void f() {
  auto p = std::make_unique<int>(3);  // the word 'new' appears nowhere
  std::vector<int> v;
  v.push_back(1);  // renewal of interest in newlines is fine
}
""", lint.check_raw_alloc)
        self.assertEqual(findings, [])

    def test_r2_approved_file_passes(self):
        rpath = sorted(lint.R2_APPROVED)[0]
        findings = self.lint_file(rpath, """
static Thing* g = new Thing();
""", lint.check_raw_alloc)
        self.assertEqual(findings, [])

    def test_r2_ignores_comments_and_strings(self):
        findings = self.lint_file("src/e.cc", """
// new allocations are forbidden here; delete nothing
const char* s = "new delete malloc(");
""", lint.check_raw_alloc)
        self.assertEqual(findings, [])

    # ------------------------------------------------------------ R3 ----

    def catalogue(self):
        return lint.load_catalogue(OBSERVABILITY_MD)

    def test_r3_catalogue_expansion(self):
        names, patterns = self.catalogue()
        self.assertIn("runtime.pool.threads", names)
        self.assertIn("a.b.hits", names)
        self.assertIn("a.b.misses", names)  # relative `.misses` expanded
        self.assertTrue(lint.catalogued("perf.engine.cycles", names,
                                        patterns))
        self.assertTrue(lint.catalogued("perf.engine.ipc", names, patterns))
        self.assertFalse(lint.catalogued("perf.engine.nope", names,
                                         patterns))

    def test_r3_flags_undocumented_metric(self):
        path = self.write("src/m.cc", """
void f(Reg& reg) {
  reg.SetGauge("runtime.pool.threads", 1.0);  // documented: ok
  reg.SetGauge("runtime.pool.bogus", 2.0);    // undocumented: flagged
}
""")
        names, patterns = self.catalogue()
        findings = lint.check_metric_names(self.root, [path], names,
                                           patterns)
        self.assertEqual(self.rules(findings), ["grape-lint-metric-names"])
        self.assertIn("runtime.pool.bogus", findings[0].msg)

    def test_r3_suffix_composition(self):
        path = self.write("src/p.cc", """
void f(Reg& reg, const std::string& prefix) {
  reg.SetGauge(prefix + "cycles", 1.0);  // matches perf.<phase>.cycles
  reg.SetGauge(prefix + "bogus_suffix", 2.0);
}
""")
        names, patterns = self.catalogue()
        findings = lint.check_metric_names(self.root, [path], names,
                                           patterns)
        self.assertEqual(self.rules(findings), ["grape-lint-metric-names"])
        self.assertIn("bogus_suffix", findings[0].msg)

    def test_r3_trace_kind_names(self):
        path = self.write("src/obs/trace.cc", """
const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSuperstep:
      return "superstep";
    case TraceKind::kPhase:
      return "phase";
    case TraceKind::kMystery:
      return "mystery_kind";
  }
  return "unknown";  // fallback, deliberately not checked
}
""")
        names, patterns = self.catalogue()
        findings = lint.check_metric_names(self.root, [path], names,
                                           patterns)
        self.assertEqual(self.rules(findings), ["grape-lint-metric-names"])
        self.assertIn("mystery_kind", findings[0].msg)

    # ------------------------------------------------------------ R4 ----

    def test_r4_flags_side_effects(self):
        findings = self.lint_file("src/dc.cc", """
void f(int i, std::vector<int>& v) {
  GRAPE_DCHECK(i++ < 4);
  GRAPE_DCHECK(v.size() == (n = 3));
  GRAPE_DCHECK(v.push_back(1), true);
}
""", lint.check_dcheck_purity)
        self.assertEqual(len(findings), 3)
        self.assertTrue(all(r == "grape-lint-dcheck-pure"
                            for r in self.rules(findings)))

    def test_r4_accepts_pure_predicates(self):
        findings = self.lint_file("src/dcok.cc", """
void f(uint32_t w, uint32_t n, const std::vector<int>& v) {
  GRAPE_DCHECK(w < n);
  GRAPE_DCHECK(v.size() >= 1 && v.back() != 0);
  GRAPE_DCHECK(a == b);
  GRAPE_DCHECK(a <= b);
  GRAPE_DCHECK(x >= y);
  GRAPE_DCHECK(p != nullptr);
}
""", lint.check_dcheck_purity)
        self.assertEqual(findings, [])

    def test_r4_multiline_dcheck(self):
        findings = self.lint_file("src/dcml.cc", """
void f(uint32_t v, const C& c) {
  GRAPE_DCHECK(v >= c.begin &&
               v < c.end);
}
""", lint.check_dcheck_purity)
        self.assertEqual(findings, [])

    # ------------------------------------------------------------ R5 ----

    def test_r5_canonical_guard_passes(self):
        findings = self.lint_file("src/runtime/thing.h", """
#ifndef GRAPEPLUS_RUNTIME_THING_H_
#define GRAPEPLUS_RUNTIME_THING_H_
#endif  // GRAPEPLUS_RUNTIME_THING_H_
""", lint.check_include_guard)
        self.assertEqual(findings, [])

    def test_r5_wrong_guard_flagged(self):
        findings = self.lint_file("src/runtime/wrong.h", """
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H
#endif
""", lint.check_include_guard)
        self.assertEqual(len(findings), 2)  # ifndef and define both wrong
        self.assertTrue(all(r == "grape-lint-include-guard"
                            for r in self.rules(findings)))

    def test_r5_missing_guard_flagged(self):
        findings = self.lint_file("src/runtime/none.h", """
#pragma once
""", lint.check_include_guard)
        self.assertEqual(self.rules(findings), ["grape-lint-include-guard"])

    # ------------------------------------------------------- plumbing ----

    def test_strip_preserves_offsets(self):
        text = 'int a; // new\nconst char* s = "delete";\nint b;\n'
        stripped = lint.strip_comments_and_strings(text)
        self.assertEqual(len(stripped), len(text))
        self.assertEqual(stripped.count("\n"), text.count("\n"))
        self.assertNotIn("new", stripped)
        self.assertNotIn("delete", stripped)

    def test_run_end_to_end_clean_tree(self):
        self.write("src/ok.h", """
#ifndef GRAPEPLUS_OK_H_
#define GRAPEPLUS_OK_H_
#endif  // GRAPEPLUS_OK_H_
""")
        self.write("src/ok.cc", """
#include "ok.h"
void f(std::atomic<int>& a) {
  // order: relaxed — test fixture.
  a.store(1, std::memory_order_relaxed);
}
""")
        self.assertEqual(lint.run(self.root), 0)

    def test_run_end_to_end_dirty_tree(self):
        self.write("src/bad.cc", "int* p = new int;\n")
        self.assertEqual(lint.run(self.root), 1)


if __name__ == "__main__":
    unittest.main(verbosity=2)
