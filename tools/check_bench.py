#!/usr/bin/env python3
"""Bench-regression gate: compare freshly produced BENCH_micro.json /
BENCH_ingest.json against committed baselines and fail on hot-path
regressions.

Only machine-portable *ratio* metrics are gated (dense-vs-baseline speedups,
streaming-vs-in-memory slowdowns): absolute seconds depend on the box, but
the ratio of two measurements taken on the same box in the same run is
stable, so a >25% drop against the committed baseline ratio means the hot
path itself regressed. Boolean consistency fields are always enforced.

Usage:
  check_bench.py --micro build/BENCH_micro.json --ingest build/BENCH_ingest.json \
      [--baseline-micro BENCH_micro.json] [--baseline-ingest BENCH_ingest.json] \
      [--threshold 0.25]
  check_bench.py --list-metrics     # print the gate/required-true catalogue

Exit codes: 0 = within tolerance, 1 = regression or inconsistency,
2 = bad invocation / unreadable file.

The gate/skip/required-true logic is covered by tools/check_bench_test.py
(pure python, registered as a ctest).
"""

import argparse
import json
import sys

# (file key, dotted metric path, direction, (guard seconds fields),
#  threshold override or floor)
# direction "higher":  regression when fresh < baseline * (1 - threshold)
# direction "lower":   regression when fresh > baseline * (1 + threshold)
# direction "ceiling": regression when fresh > the given absolute bound —
#   for ratios whose acceptance is stated absolutely (the adaptive
#   direction controller's "auto is never >5% slower than the better pure
#   direction" bar is 1.05 regardless of what any baseline recorded).
# direction "floor":   regression when fresh < the given absolute floor —
#   for hot-path speedups whose baseline side is itself noisy (history shows
#   the micro dispatch baseline halving between runs of the same binary), a
#   relative gate would flap; the floor instead encodes "the dense path must
#   stay clearly ahead of the hashmap baseline" (observed values 4.5–12.8
#   against floors of 2–3, i.e. a real structural regression to parity still
#   trips it).
# Every guard field (dotted paths into the *fresh* json) must individually
# reach MIN_GUARD_SEC for the metric to be gated: a ratio whose numerator or
# denominator is a few tens of milliseconds swings by 50%+ between identical
# runs (observed for the smoke-scale CC ratio), so such metrics are reported
# but not gated at that scale — the committed full-profile BENCH_ingest.json
# tracks them at 1M where the timings are stable. A guard may also be a
# ("field", min_seconds) pair for metrics that need a higher floor than
# MIN_GUARD_SEC (e.g. the direction auto-vs-best ceilings, whose 5% band is
# tighter than smoke-scale run-to-run noise).
# The streaming slowdown ratios get a wider band (0.5): they mix compute
# with page-fault timing, which swings more across kernels/filesystems than
# the pure-compute speedups do.
GATES = [
    ("micro", "buffer_append_drain.speedup", "floor", (), 2.0),
    ("micro", "message_dispatch.speedup", "floor", (), 3.0),
    ("ingest", "build.speedup", "higher",
     ("build.serial_baseline_sec", "build.parallel_sec"), None),
    ("ingest", "build_partition.speedup", "higher",
     ("build_partition.serial_baseline_sec", "build_partition.parallel_sec"),
     None),
    ("ingest", "streaming.cc_stream_over_inmem", "lower",
     ("streaming.cc_inmem_sec", "streaming.cc_stream_sec"), 0.5),
    ("ingest", "streaming.pagerank_stream_over_inmem", "lower",
     ("streaming.pagerank_inmem_sec", "streaming.pagerank_stream_sec"), 0.5),
    ("ingest", "streaming.pagerank_pull_stream_over_inmem", "lower",
     ("streaming.pagerank_pull_inmem_sec",
      "streaming.pagerank_pull_stream_sec"), 0.5),
    ("ingest", "streaming.cf_stream_over_inmem", "lower",
     ("streaming.cf_inmem_sec", "streaming.cf_stream_sec"), 0.5),
    # The memoised outer-lid cache must keep paying for itself: repeat
    # streaming sweeps with the cache on vs off (same run, same box). Both
    # timings are guarded, so smoke-scale noise skips rather than flaps,
    # and the ratio mixes page-fault timing like the other streaming
    # gates, so it gets the same wider 0.5 band.
    ("ingest", "streaming.lid_cache.speedup", "higher",
     ("streaming.pagerank_stream_nocache_sec",
      "streaming.pagerank_stream_sec"), 0.5),
    # Adaptive direction controller: auto may never lose >5% to the better
    # pure direction. A 5% band is inside smoke-scale noise, so these only
    # engage at full-profile timings (the committed 1M BENCH_ingest.json);
    # smoke runs report and skip.
    ("ingest", "direction.pagerank_auto_over_best", "ceiling",
     (("direction.pagerank_push_sec", 5.0),
      ("direction.pagerank_pull_sec", 5.0),
      ("direction.pagerank_auto_sec", 5.0)), 1.05),
    ("ingest", "direction.cc_auto_over_best", "ceiling",
     (("direction.cc_push_sec", 1.0), ("direction.cc_pull_sec", 1.0),
      ("direction.cc_auto_sec", 1.0)), 1.05),
    # Superstep rendezvous: the MCS tree and the topology-selected barrier
    # must beat (or at worst match) the old mutex+cv hub at the 4-thread
    # shape the threaded engine runs. Guarded on the box actually having 4
    # cpus: oversubscribed 1-2 core CI runners make every barrier degrade
    # to futex waits, where the comparison measures the scheduler, not the
    # barrier — those boxes report and skip (the "cpus" guard reuses the
    # guard machinery with a count, not seconds).
    ("micro", "barrier.mcs_over_cv", "floor", (("barrier.cpus", 4.0),), 1.0),
    ("micro", "barrier.topo_over_cv", "floor", (("barrier.cpus", 4.0),), 1.0),
    # Threaded engine vs the sim engine on the same partition in the same
    # run: a same-box ratio like the streaming gates, with the same wide
    # 0.5 band (the threaded side mixes real scheduling/pinning effects).
    ("ingest", "threaded_scaling.cc_bsp_over_sim", "lower",
     ("streaming.cc_inmem_sec", "threaded_scaling.cc_bsp_sec"), 0.5),
    ("ingest", "threaded_scaling.pagerank_aap_over_sim", "lower",
     ("streaming.pagerank_inmem_sec", "threaded_scaling.pagerank_aap_sec"),
     0.5),
    # Async engine vs threaded AAP on the same partition in the same run:
    # barrier-free scheduling trades coordination for possible redundant
    # quanta, so the band is the same wide 0.5 the other same-box engine
    # ratios use; guarded on both timings so sub-noise smoke shapes skip.
    ("ingest", "async.pagerank_over_threaded", "lower",
     ("threaded_scaling.pagerank_aap_sec", "async.pagerank_sec"), 0.5),
    # Observability layer: the full metrics+tracer instrumentation must hold
    # the <=3% overhead contract of docs/OBSERVABILITY.md (same run, same
    # box, min-of-pairs A/B in stress_ingest). Guarded on the off-side
    # timing so sub-noise smoke shapes report and skip instead of flapping
    # inside the tight band.
    ("ingest", "obs_overhead.on_over_off", "ceiling",
     (("obs_overhead.off_sec", 0.2),), 1.03),
]

# Schema tag the embedded observability RunReport must carry (mirrors
# kRunReportSchema in src/obs/report.h — bump both together).
RUNREPORT_SCHEMA = "grapeplus-runreport-v1"

# Boolean fields that must be true in the fresh results, regardless of
# baselines: a bench run that produced inconsistent results is a hard fail.
REQUIRED_TRUE = [
    ("ingest", "consistent"),
    ("ingest", "streaming.identical"),
    ("ingest", "streaming.within_budget"),
    ("ingest", "streaming.pull_identical"),
    ("ingest", "streaming.cf_identical"),
    ("ingest", "streaming.lid_cache.nocache_identical"),
    ("ingest", "direction.pagerank_fixpoint_equal"),
    ("ingest", "direction.cc_identical"),
    ("ingest", "threaded_scaling.cc_identical"),
    ("ingest", "threaded_scaling.pagerank_close"),
    ("ingest", "async.cc_identical"),
    ("ingest", "async.pagerank_close"),
    ("ingest", "obs_overhead.identical"),
]

MIN_GUARD_SEC = 0.1


def lookup(doc, dotted):
    cur = doc
    for part in dotted.split("."):
        if not isinstance(cur, dict) or part not in cur:
            return None
        cur = cur[part]
    return cur


def load(path, what):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot read {what} {path}: {e}", file=sys.stderr)
        sys.exit(2)


def list_metrics(out=print):
    """Prints every gated metric and required-true field — the
    inspection mode CI logs link to when a gate fires."""
    out("gated metrics (file:path  direction  bound  guards):")
    for which, path, direction, guards, override in GATES:
        bound = ("default-threshold" if override is None
                 else f"{override:g}")
        guard_s = ",".join(
            f"{g[0]}>={g[1]}s" if isinstance(g, tuple) else g
            for g in guards) if guards else "-"
        out(f"  {which}:{path}  {direction}  {bound}  {guard_s}")
    out("required-true fields:")
    for which, path in REQUIRED_TRUE:
        out(f"  {which}:{path}")


def run_checks(fresh, base, threshold, out=print):
    """Evaluates REQUIRED_TRUE + GATES over already-loaded fresh/baseline
    documents; returns the list of failure strings (empty = pass). Pure —
    no I/O besides `out` — so the unit test drives it directly."""
    failures = []
    for which, path in REQUIRED_TRUE:
        value = lookup(fresh[which], path)
        if value is not True:
            failures.append(f"{which}:{path} must be true, got {value!r}")

    # The embedded observability RunReport: stress_ingest always emits it,
    # and downstream consumers (dashboards, the CI artifacts) key on its
    # schema and on the metrics snapshot actually carrying counters, so a
    # run that lost the section or produced an empty registry is a failure,
    # not a skip.
    report = lookup(fresh["ingest"], "run_report")
    if not isinstance(report, dict):
        failures.append("ingest:run_report missing or not an object")
    else:
        schema = report.get("schema")
        if schema != RUNREPORT_SCHEMA:
            failures.append(f"ingest:run_report.schema is {schema!r}, "
                            f"want {RUNREPORT_SCHEMA!r}")
        runs = report.get("runs")
        if not isinstance(runs, list) or not runs:
            failures.append("ingest:run_report.runs must be a non-empty "
                            "list")
        counters = lookup(report, "metrics.counters")
        if not isinstance(counters, dict) or not counters:
            failures.append("ingest:run_report.metrics.counters must be a "
                            "non-empty object")

    for which, path, direction, guards, override in GATES:
        fresh_v = lookup(fresh[which], path)
        base_v = lookup(base[which], path)
        if fresh_v is None:
            failures.append(f"{which}:{path} missing from fresh results")
            continue
        guard_short = None  # (value, floor) of the first unmet guard
        for g in guards:
            field, floor = g if isinstance(g, tuple) else (g, MIN_GUARD_SEC)
            gv = lookup(fresh[which], field)
            gv = gv if isinstance(gv, (int, float)) else 0.0
            if gv < floor:
                guard_short = (gv, floor)
                break
        if guard_short is not None:
            out(f"  SKIP {which}:{path} (a timing of "
                f"{guard_short[0]:.3f}s is below the noise floor "
                f"{guard_short[1]}s)")
            continue
        if direction in ("floor", "ceiling"):
            bound = override
            if direction == "floor":
                ok = fresh_v >= bound
                rel = ">="
            else:
                ok = fresh_v <= bound
                rel = "<="
            against = f"absolute {direction}"
        else:
            # A baseline that predates this metric (e.g. a freshly added
            # BENCH section with no committed smoke baseline yet), carries a
            # non-numeric value, or recorded a zero ratio (meaningless as a
            # relative bound and a division-free footgun) cannot gate: warn
            # and skip instead of crashing or failing the build.
            if not isinstance(base_v, (int, float)) or base_v == 0:
                out(f"  SKIP {which}:{path} (baseline metric missing or "
                    f"zero: {base_v!r}; commit a refreshed baseline to "
                    f"gate it)")
                continue
            eff_threshold = override if override is not None else threshold
            if direction == "higher":
                bound = base_v * (1.0 - eff_threshold)
                ok = fresh_v >= bound
                rel = ">="
            else:
                bound = base_v * (1.0 + eff_threshold)
                ok = fresh_v <= bound
                rel = "<="
            against = f"baseline {base_v:.3g}"
        verdict = "ok  " if ok else "FAIL"
        out(f"  {verdict} {which}:{path} = {fresh_v:.3g} (want {rel} "
            f"{bound:.3g}; {against})")
        if not ok:
            failures.append(
                f"{which}:{path} regressed: {fresh_v:.3g} (want {rel} "
                f"{bound:.3g}, {against})")
    return failures


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--micro", help="fresh BENCH_micro.json")
    ap.add_argument("--ingest", help="fresh BENCH_ingest.json")
    ap.add_argument("--baseline-micro", default="BENCH_micro.json")
    ap.add_argument("--baseline-ingest", default="BENCH_ingest.json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional regression (default 0.25)")
    ap.add_argument("--list-metrics", action="store_true",
                    help="print every gated metric / required-true field "
                         "and exit (no result files needed)")
    args = ap.parse_args()

    if args.list_metrics:
        list_metrics()
        return 0
    if args.micro is None or args.ingest is None:
        ap.error("--micro and --ingest are required unless --list-metrics")

    fresh = {
        "micro": load(args.micro, "fresh micro"),
        "ingest": load(args.ingest, "fresh ingest"),
    }
    base = {
        "micro": load(args.baseline_micro, "baseline micro"),
        "ingest": load(args.baseline_ingest, "baseline ingest"),
    }

    failures = run_checks(fresh, base, args.threshold)
    if failures:
        print("\ncheck_bench: FAILED")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\ncheck_bench: all hot-path metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
