#!/usr/bin/env python3
"""Project-invariant linter for the GRAPE+ reproduction.

Checks the contracts that neither the compiler nor clang-tidy can express:

  R1 order-comment     every explicit std::memory_order_* use carries an
                       adjacent `// order:` justification comment (same line,
                       up to 3 lines above, or the line directly below).
  R2 raw-alloc         no raw `new` / `delete` / `malloc` family calls
                       outside the approved-files list (leaked singletons).
  R3 metric-names      metric/trace name literals used in src/ appear in the
                       docs/OBSERVABILITY.md catalogue (dynamic names match
                       `<placeholder>` patterns or literal suffixes).
  R4 dcheck-pure       GRAPE_DCHECK arguments have no side effects
                       (debug-only checks compile out of release builds).
  R5 include-guards    headers use the canonical GRAPEPLUS_<PATH>_H_ guard.

Findings print gcc-style (`path:line:col: error: msg [rule]`) so CI problem
matchers pick them up. Exit status: 0 clean, 1 findings, 2 usage error.

Run from anywhere: `python3 tools/lint_grapeplus.py [--root REPO]`.
Tested by tools/lint_grapeplus_test.py (both are ctest entries).
"""

from __future__ import annotations

import argparse
import os
import re
import sys

# Files allowed to use raw allocation, with the reason on record.
R2_APPROVED = {
    "src/obs/metrics.cc",   # leaked Global() registry (thread-exit hooks)
    "src/obs/trace.cc",     # leaked Global() tracer (atexit recording)
}

# How far above a memory_order use an `// order:` comment may sit.
R1_LOOKBACK = 3


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment/string contents with spaces, preserving offsets.

    Newlines inside block comments survive so line numbers stay valid.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            chunk = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            out.append(quote + " " * (j - i - 1) + (text[j] if j < n else ""))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: str, line: int, col: int, msg: str, rule: str):
        self.path, self.line, self.col = path, line, col
        self.msg, self.rule = msg, rule

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: error: "
                f"{self.msg} [{self.rule}]")


def iter_files(root: str, subdirs, exts):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if os.path.splitext(name)[1] in exts:
                    yield os.path.join(dirpath, name)


def rel(root: str, path: str) -> str:
    return os.path.relpath(path, root).replace(os.sep, "/")


# ----------------------------------------------------------------- R1 ------


def check_order_comments(root: str, path: str, text: str):
    findings = []
    lines = text.split("\n")
    code = strip_comments_and_strings(text).split("\n")
    for idx, code_line in enumerate(code):
        m = re.search(r"\bmemory_order_\w+", code_line)
        if not m:
            continue
        lo = max(0, idx - R1_LOOKBACK)
        window = lines[lo:idx + 2]  # lookback + same line + one below
        if not any("// order:" in w for w in window):
            findings.append(Finding(
                rel(root, path), idx + 1, m.start() + 1,
                f"'{m.group(0)}' has no adjacent '// order:' justification "
                f"(within {R1_LOOKBACK} lines above or 1 below)",
                "grape-lint-order-comment"))
    return findings


# ----------------------------------------------------------------- R2 ------


def check_raw_alloc(root: str, path: str, text: str):
    rpath = rel(root, path)
    if rpath in R2_APPROVED:
        return []
    findings = []
    code = strip_comments_and_strings(text).split("\n")
    for idx, line in enumerate(code):
        # Deleted special members: `= delete;` / `= delete ;`.
        scrubbed = re.sub(r"=\s*delete\b", "", line)
        for pat, what in [
            (re.compile(r"\bnew\b"), "new"),
            (re.compile(r"\bdelete\b"), "delete"),
            (re.compile(r"\b(?:malloc|calloc|realloc|free)\s*\("),
             "malloc/calloc/realloc/free"),
        ]:
            m = pat.search(scrubbed)
            if m:
                findings.append(Finding(
                    rpath, idx + 1, m.start() + 1,
                    f"raw '{what}' outside the approved-files list "
                    f"(use containers / smart pointers, or add the file to "
                    f"R2_APPROVED in tools/lint_grapeplus.py with a reason)",
                    "grape-lint-raw-alloc"))
    return findings


# ----------------------------------------------------------------- R3 ------


def load_catalogue(doc_text: str):
    """Backticked names from OBSERVABILITY.md.

    Table cells may abbreviate siblings: `a.b.hits` / `.misses` expands the
    relative token against the previous absolute one. `<placeholder>` parts
    become match-anything pattern segments.
    """
    names, patterns = set(), []
    for line in doc_text.split("\n"):
        tokens = re.findall(r"`([^`]+)`", line)
        prev_abs = None
        for tok in tokens:
            tok = tok.strip()
            if not re.fullmatch(r"[A-Za-z0-9_.<>-]+", tok):
                continue
            if tok.startswith(".") and prev_abs:
                tok = prev_abs.rsplit(".", 1)[0] + tok
            elif "." in tok or tok.islower():
                prev_abs = tok
            if "<" in tok:
                # re.escape leaves < > unescaped (they are not regex-special).
                pat = re.escape(tok)
                pat = re.sub(r"<[^>]*>", r"[A-Za-z0-9_]+", pat)
                patterns.append(re.compile(r"^" + pat + r"$"))
            else:
                names.add(tok)
    return names, patterns


def catalogued(name: str, names, patterns) -> bool:
    if name in names:
        return True
    return any(p.match(name) for p in patterns)


METRIC_SITE = re.compile(
    r"(?:GetCounter|GetHistogram|SetGauge)\s*\(\s*\"([^\"]+)\"\s*[,)]"
    r"|(?:counters|gauges|histograms)\[\s*\"([^\"]+)\"\s*\]")
METRIC_SUFFIX_SITE = re.compile(
    r"(?:GetCounter|GetHistogram|SetGauge)\s*\(\s*\w+\s*\+\s*\"([^\"]+)\"")


def check_metric_names(root: str, src_files, names, patterns):
    findings = []
    trace_cc = None
    for path in src_files:
        text = open(path, encoding="utf-8").read()
        rpath = rel(root, path)
        if rpath == "src/obs/trace.cc":
            trace_cc = (path, text)
        for idx, line in enumerate(text.split("\n")):
            for m in METRIC_SITE.finditer(line):
                name = m.group(1) or m.group(2)
                if not catalogued(name, names, patterns):
                    findings.append(Finding(
                        rpath, idx + 1, m.start() + 1,
                        f"metric name '{name}' is not in the "
                        f"docs/OBSERVABILITY.md catalogue",
                        "grape-lint-metric-names"))
            for m in METRIC_SUFFIX_SITE.finditer(line):
                suffix = m.group(1)
                ok = any(n.endswith(suffix) for n in names) or any(
                    p.pattern.endswith(re.escape(suffix) + "$")
                    for p in patterns)
                if not ok:
                    findings.append(Finding(
                        rpath, idx + 1, m.start() + 1,
                        f"dynamically-composed metric suffix '{suffix}' "
                        f"matches nothing in the docs/OBSERVABILITY.md "
                        f"catalogue",
                        "grape-lint-metric-names"))
    # Trace kind names: each `case ...: return "name";` of TraceKindName.
    if trace_cc is not None:
        path, text = trace_cc
        for m in re.finditer(
                r"case\s+TraceKind::\w+:\s*\n\s*return\s+\"([^\"]+)\";",
                text):
            name = m.group(1)
            if not catalogued(name, names, patterns):
                line = text[:m.start()].count("\n") + 1
                findings.append(Finding(
                    rel(root, path), line, 1,
                    f"trace kind name '{name}' is not documented in "
                    f"docs/OBSERVABILITY.md",
                    "grape-lint-metric-names"))
    return findings


# ----------------------------------------------------------------- R4 ------


MUTATOR_CALL = re.compile(
    r"\.(?:push_back|emplace_back|pop_back|erase|insert|clear|resize|"
    r"reserve|reset|release|swap|store|exchange|fetch_add|fetch_sub|"
    r"notify_one|notify_all|lock|unlock)\s*\(")


def dcheck_args(code_line_join: str, start: int):
    """Extracts the balanced-paren argument text of a DCHECK at `start`."""
    depth = 0
    for i in range(start, len(code_line_join)):
        c = code_line_join[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return code_line_join[code_line_join.find("(", start) + 1:i]
    return None


def check_dcheck_purity(root: str, path: str, text: str):
    findings = []
    code = strip_comments_and_strings(text)
    for m in re.finditer(r"\bGRAPE_DCHECK\s*\(", code):
        args = dcheck_args(code, m.start())
        if args is None:
            continue
        line = code[:m.start()].count("\n") + 1
        problems = []
        if re.search(r"\+\+|--", args):
            problems.append("increment/decrement")
        # Assignment: `=` not part of ==, !=, <=, >=.
        if re.search(r"(?<![=!<>])=(?!=)", args):
            problems.append("assignment")
        cm = MUTATOR_CALL.search(args)
        if cm:
            problems.append(f"mutating call '{cm.group(0).strip()[:-1]}'")
        if problems:
            findings.append(Finding(
                rel(root, path), line, m.start() - code.rfind("\n", 0, m.start()),
                f"GRAPE_DCHECK argument has side effects "
                f"({', '.join(problems)}): debug-only checks compile out of "
                f"release builds",
                "grape-lint-dcheck-pure"))
    return findings


# ----------------------------------------------------------------- R5 ------


def expected_guard(root: str, path: str) -> str:
    rpath = rel(root, path)
    stem = re.sub(r"[./-]", "_", rpath[len("src/"):] if rpath.startswith("src/")
                  else rpath)
    return "GRAPEPLUS_" + stem.upper() + "_"


def check_include_guard(root: str, path: str, text: str):
    guard = expected_guard(root, path)
    findings = []
    rpath = rel(root, path)
    m_ifndef = re.search(r"^#ifndef\s+(\S+)", text, re.M)
    m_define = re.search(r"^#define\s+(\S+)", text, re.M)
    if not m_ifndef or not m_define:
        findings.append(Finding(rpath, 1, 1,
                                f"missing include guard (expected {guard})",
                                "grape-lint-include-guard"))
        return findings
    for m, what in ((m_ifndef, "#ifndef"), (m_define, "#define")):
        if m.group(1) != guard:
            findings.append(Finding(
                rpath, text[:m.start()].count("\n") + 1, 1,
                f"{what} uses '{m.group(1)}', expected canonical "
                f"guard '{guard}'",
                "grape-lint-include-guard"))
    return findings


# --------------------------------------------------------------- driver ----


def run(root: str) -> int:
    src_files = sorted(iter_files(root, ["src"], {".h", ".cc"}))
    test_files = sorted(iter_files(root, ["tests"], {".h", ".cc"}))
    if not src_files:
        print(f"lint_grapeplus: no sources under {root}/src", file=sys.stderr)
        return 2
    doc_path = os.path.join(root, "docs", "OBSERVABILITY.md")
    try:
        names, patterns = load_catalogue(
            open(doc_path, encoding="utf-8").read())
    except OSError:
        print(f"lint_grapeplus: cannot read {doc_path}", file=sys.stderr)
        return 2

    findings = []
    for path in src_files:
        text = open(path, encoding="utf-8").read()
        findings += check_order_comments(root, path, text)
        findings += check_raw_alloc(root, path, text)
        findings += check_dcheck_purity(root, path, text)
        if path.endswith(".h"):
            findings += check_include_guard(root, path, text)
    for path in test_files:
        text = open(path, encoding="utf-8").read()
        findings += check_dcheck_purity(root, path, text)
    findings += check_metric_names(root, src_files, names, patterns)

    for f in findings:
        print(f)
    n = len(findings)
    print(f"lint_grapeplus: {n} finding{'s' if n != 1 else ''} in "
          f"{len(src_files) + len(test_files)} files", file=sys.stderr)
    return 1 if findings else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--root", default=None,
                    help="repository root (default: the linter's grandparent)")
    args = ap.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    return run(root)


if __name__ == "__main__":
    sys.exit(main())
