#!/usr/bin/env python3
"""Unit tests for the check_bench.py bench-regression gate — the script
guards CI, so its gate / skip / required-true logic is itself under test
(pure python, registered as a ctest; no bench artifacts needed).

Run directly:  python3 tools/check_bench_test.py
"""

import copy
import io
import unittest
from contextlib import redirect_stdout, redirect_stderr

import check_bench


def deep_set(doc, dotted, value):
    parts = dotted.split(".")
    cur = doc
    for p in parts[:-1]:
        cur = cur.setdefault(p, {})
    cur[parts[-1]] = value


def make_docs():
    """Fresh/baseline documents that pass every gate: each gated metric is
    healthy, every guard timing is well above the noise floor, and every
    required-true field is true."""
    fresh = {"micro": {}, "ingest": {}}
    base = {"micro": {}, "ingest": {}}
    for which, path, direction, guards, override in check_bench.GATES:
        if direction == "floor":
            deep_set(fresh[which], path, override * 2.0)
        elif direction == "ceiling":
            deep_set(fresh[which], path, override * 0.5)
        elif direction == "higher":
            deep_set(fresh[which], path, 3.0)
            deep_set(base[which], path, 3.0)
        else:  # lower
            deep_set(fresh[which], path, 1.5)
            deep_set(base[which], path, 1.5)
        for g in guards:
            if isinstance(g, tuple):
                deep_set(fresh[which], g[0], g[1] * 2.0)  # above its floor
            else:
                deep_set(fresh[which], g, 1.0)  # >> MIN_GUARD_SEC
    for which, path in check_bench.REQUIRED_TRUE:
        deep_set(fresh[which], path, True)
    fresh["ingest"]["run_report"] = {
        "schema": check_bench.RUNREPORT_SCHEMA,
        "runs": [{"name": "pagerank", "engine": "sim"}],
        "metrics": {"counters": {"runtime.pool.spurious_wakeups": 0},
                    "gauges": {}, "histograms": {}},
    }
    return fresh, base


def run(fresh, base, threshold=0.25):
    lines = []
    failures = check_bench.run_checks(fresh, base, threshold,
                                      out=lines.append)
    return failures, lines


class GateLogicTest(unittest.TestCase):
    def test_healthy_documents_pass(self):
        fresh, base = make_docs()
        failures, _ = run(fresh, base)
        self.assertEqual(failures, [])

    def test_higher_metric_regression_fails(self):
        fresh, base = make_docs()
        deep_set(base["ingest"], "build.speedup", 4.0)
        deep_set(fresh["ingest"], "build.speedup", 4.0 * 0.74)  # >25% drop
        failures, _ = run(fresh, base)
        self.assertTrue(any("build.speedup" in f for f in failures))

    def test_higher_metric_within_threshold_passes(self):
        fresh, base = make_docs()
        deep_set(base["ingest"], "build.speedup", 4.0)
        deep_set(fresh["ingest"], "build.speedup", 4.0 * 0.8)  # 20% drop
        failures, _ = run(fresh, base)
        self.assertEqual(failures, [])

    def test_lower_metric_regression_fails(self):
        fresh, base = make_docs()
        path = "streaming.cc_stream_over_inmem"
        deep_set(base["ingest"], path, 1.0)
        deep_set(fresh["ingest"], path, 1.6)  # beyond the 0.5 wide band
        failures, _ = run(fresh, base)
        self.assertTrue(any(path in f for f in failures))

    def test_floor_is_absolute(self):
        fresh, base = make_docs()
        # The micro dispatch floor is absolute: a sky-high baseline must not
        # move the bound.
        deep_set(base["micro"], "message_dispatch.speedup", 1000.0)
        deep_set(fresh["micro"], "message_dispatch.speedup", 2.9)  # floor 3.0
        failures, _ = run(fresh, base)
        self.assertTrue(any("message_dispatch" in f for f in failures))
        deep_set(fresh["micro"], "message_dispatch.speedup", 3.1)
        failures, _ = run(fresh, base)
        self.assertEqual(failures, [])

    def test_ceiling_is_absolute(self):
        fresh, base = make_docs()
        path = "direction.pagerank_auto_over_best"
        deep_set(fresh["ingest"], path, 1.06)  # acceptance ceiling is 1.05
        failures, _ = run(fresh, base)
        self.assertTrue(any(path in f for f in failures))
        deep_set(fresh["ingest"], path, 1.04)
        failures, _ = run(fresh, base)
        self.assertEqual(failures, [])

    def test_guard_below_noise_floor_skips(self):
        fresh, base = make_docs()
        deep_set(fresh["ingest"], "build.serial_baseline_sec", 0.01)
        deep_set(fresh["ingest"], "build.speedup", 0.001)  # awful, but noisy
        failures, lines = run(fresh, base)
        self.assertEqual(failures, [])
        self.assertTrue(any("SKIP ingest:build.speedup" in ln
                            for ln in lines))

    def test_per_guard_floor_skips_above_global_noise_floor(self):
        fresh, base = make_docs()
        # Smoke-scale direction timing: comfortably above MIN_GUARD_SEC but
        # under the gate's own 5s floor — the tight 5% ceiling must not
        # evaluate against such noisy runs.
        deep_set(fresh["ingest"], "direction.pagerank_push_sec", 0.8)
        deep_set(fresh["ingest"], "direction.pagerank_auto_over_best", 1.2)
        failures, lines = run(fresh, base)
        self.assertEqual(failures, [])
        self.assertTrue(
            any("SKIP ingest:direction.pagerank_auto_over_best" in ln
                for ln in lines))

    def test_missing_guard_counts_as_zero_and_skips(self):
        fresh, base = make_docs()
        doc = fresh["ingest"]["direction"]
        del doc["pagerank_pull_sec"]
        deep_set(fresh["ingest"], "direction.pagerank_auto_over_best", 99.0)
        failures, lines = run(fresh, base)
        self.assertEqual(failures, [])
        self.assertTrue(
            any("SKIP ingest:direction.pagerank_auto_over_best" in ln
                for ln in lines))

    def test_missing_fresh_metric_fails(self):
        fresh, base = make_docs()
        del fresh["micro"]["buffer_append_drain"]
        failures, _ = run(fresh, base)
        self.assertTrue(any("buffer_append_drain.speedup missing" in f
                            for f in failures))

    def test_missing_or_zero_baseline_skips_with_warning(self):
        fresh, base = make_docs()
        deep_set(base["ingest"], "build.speedup", 0)
        del base["ingest"]["build_partition"]
        failures, lines = run(fresh, base)
        self.assertEqual(failures, [])
        self.assertTrue(any("SKIP ingest:build.speedup" in ln
                            for ln in lines))
        self.assertTrue(any("SKIP ingest:build_partition.speedup" in ln
                            for ln in lines))

    def test_required_true_fails_on_false_and_missing(self):
        fresh, base = make_docs()
        deep_set(fresh["ingest"], "direction.cc_identical", False)
        failures, _ = run(fresh, base)
        self.assertTrue(any("direction.cc_identical must be true" in f
                            for f in failures))
        fresh2 = copy.deepcopy(fresh)
        deep_set(fresh2["ingest"], "direction.cc_identical", True)
        del fresh2["ingest"]["streaming"]["pull_identical"]
        failures, _ = run(fresh2, base)
        self.assertTrue(any("streaming.pull_identical must be true" in f
                            for f in failures))

    def test_custom_threshold_applies_to_default_gates(self):
        fresh, base = make_docs()
        deep_set(base["ingest"], "build.speedup", 4.0)
        deep_set(fresh["ingest"], "build.speedup", 4.0 * 0.85)
        self.assertEqual(run(fresh, base, threshold=0.25)[0], [])
        failures, _ = run(fresh, base, threshold=0.10)
        self.assertTrue(any("build.speedup" in f for f in failures))

    def test_obs_overhead_ceiling_and_guard(self):
        fresh, base = make_docs()
        path = "obs_overhead.on_over_off"
        deep_set(fresh["ingest"], "obs_overhead.off_sec", 0.5)
        deep_set(fresh["ingest"], path, 1.06)  # contract is <= 1.03
        failures, _ = run(fresh, base)
        self.assertTrue(any(path in f for f in failures))
        deep_set(fresh["ingest"], path, 1.02)
        failures, _ = run(fresh, base)
        self.assertEqual(failures, [])
        # Sub-noise off-side timing: report and skip, never flap.
        deep_set(fresh["ingest"], "obs_overhead.off_sec", 0.05)
        deep_set(fresh["ingest"], path, 1.5)
        failures, lines = run(fresh, base)
        self.assertEqual(failures, [])
        self.assertTrue(any("SKIP ingest:obs_overhead.on_over_off" in ln
                            for ln in lines))

    def test_run_report_section_is_validated(self):
        fresh, base = make_docs()
        failures, _ = run(fresh, base)
        self.assertEqual(failures, [])
        missing = copy.deepcopy(fresh)
        del missing["ingest"]["run_report"]
        failures, _ = run(missing, base)
        self.assertTrue(any("run_report missing" in f for f in failures))
        stale = copy.deepcopy(fresh)
        stale["ingest"]["run_report"]["schema"] = "grapeplus-runreport-v0"
        failures, _ = run(stale, base)
        self.assertTrue(any("run_report.schema" in f for f in failures))
        norups = copy.deepcopy(fresh)
        norups["ingest"]["run_report"]["runs"] = []
        failures, _ = run(norups, base)
        self.assertTrue(any("run_report.runs" in f for f in failures))
        empty = copy.deepcopy(fresh)
        empty["ingest"]["run_report"]["metrics"]["counters"] = {}
        failures, _ = run(empty, base)
        self.assertTrue(any("run_report.metrics.counters" in f
                            for f in failures))

    def test_lookup_traverses_and_rejects(self):
        doc = {"a": {"b": {"c": 3}}}
        self.assertEqual(check_bench.lookup(doc, "a.b.c"), 3)
        self.assertIsNone(check_bench.lookup(doc, "a.b.missing"))
        self.assertIsNone(check_bench.lookup(doc, "a.b.c.d"))

    def test_list_metrics_covers_catalogue(self):
        lines = []
        check_bench.list_metrics(out=lines.append)
        text = "\n".join(lines)
        for which, path, *_ in check_bench.GATES:
            self.assertIn(f"{which}:{path}", text)
        for which, path in check_bench.REQUIRED_TRUE:
            self.assertIn(f"{which}:{path}", text)

    def test_main_list_metrics_exits_zero_without_files(self):
        import sys
        argv = sys.argv
        sys.argv = ["check_bench.py", "--list-metrics"]
        try:
            buf = io.StringIO()
            with redirect_stdout(buf), redirect_stderr(buf):
                self.assertEqual(check_bench.main(), 0)
            self.assertIn("required-true fields:", buf.getvalue())
        finally:
            sys.argv = argv


if __name__ == "__main__":
    unittest.main()
