# Copyright 2026 The GRAPE+ Reproduction Authors.
# Negative-compile check for the Clang thread-safety gate, run as the
# `thread_safety_neg` ctest (registered in CMakeLists.txt, Clang only).
#
# Two syntax-only compiles of tests/thread_safety_neg.cc:
#   1. with -Werror=thread-safety-analysis  -> MUST fail (the fixture's
#      deliberate unguarded access is diagnosed), proving the analysis is
#      live on this toolchain and the wrapper annotations are wired through;
#   2. without the thread-safety flags      -> MUST succeed (positive
#      control: the failure above is the analysis, not a plain C++ error).
#
# Usage (see the add_test call):
#   cmake -DCOMPILER=<clang++> -DSRC=<fixture.cc> -DINCLUDE_DIR=<repo>/src
#         [-DSTD=c++20] -P cmake/thread_safety_neg.cmake

foreach(var COMPILER SRC INCLUDE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "thread_safety_neg: -D${var}=... is required")
  endif()
endforeach()
if(NOT DEFINED STD)
  set(STD "c++20")
endif()

set(base_args -std=${STD} -I${INCLUDE_DIR} -fsyntax-only ${SRC})

# Leg 1: the analysis must reject the fixture.
execute_process(
  COMMAND ${COMPILER} -Wthread-safety -Wthread-safety-beta
          -Werror=thread-safety-analysis ${base_args}
  RESULT_VARIABLE neg_result
  OUTPUT_VARIABLE neg_out
  ERROR_VARIABLE neg_err)
if(neg_result EQUAL 0)
  message(FATAL_ERROR
      "thread_safety_neg: fixture COMPILED under -Werror=thread-safety-"
      "analysis — the analysis is not catching the deliberate GUARDED_BY "
      "violation (annotation macros compiled away, or flags not applied).")
endif()
if(NOT neg_err MATCHES "thread-safety")
  message(FATAL_ERROR
      "thread_safety_neg: fixture failed to compile, but not with a "
      "thread-safety diagnostic — fix the fixture's plain C++ first:\n"
      "${neg_err}")
endif()

# Leg 2: positive control — clean without the analysis.
execute_process(
  COMMAND ${COMPILER} ${base_args}
  RESULT_VARIABLE pos_result
  OUTPUT_VARIABLE pos_out
  ERROR_VARIABLE pos_err)
if(NOT pos_result EQUAL 0)
  message(FATAL_ERROR
      "thread_safety_neg: positive control failed — the fixture must be "
      "valid C++ without the thread-safety flags:\n${pos_err}")
endif()

message(STATUS "thread_safety_neg: analysis rejects the fixture and the "
               "positive control compiles — gate is live.")
