// Web-graph PageRank: the paper's UKWeb scenario. A hub-heavy directed RMAT
// graph is ranked with the delta-accumulative PageRank PIE program under
// AAP; the top pages are printed and the scores cross-checked against the
// sequential fixpoint.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "algos/pagerank.h"
#include "core/sim_engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"

int main() {
  using namespace grape;

  RmatOptions opts;
  opts.num_vertices = 1 << 13;
  opts.num_edges = 80000;
  opts.a = 0.65;  // deep skew: web-like hubs
  opts.b = 0.15;
  opts.c = 0.15;
  opts.directed = true;
  Graph g = MakeRmat(opts);
  std::printf("web graph: %u pages, %llu links\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_arcs()));

  Partition partition = LdgPartitioner().Partition_(g, 16);
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  cfg.msg_latency = 1.0;
  cfg.work_unit_time = 0.01;
  cfg.min_round_time = 0.5;
  SimEngine<PageRankProgram> engine(partition, PageRankProgram(0.85, 1e-7),
                                    cfg);
  auto run = engine.Run();
  std::printf("converged=%s rounds=%llu makespan=%.1f\n",
              run.converged ? "yes" : "no",
              static_cast<unsigned long long>(run.stats.total_rounds()),
              run.stats.makespan);

  // Top 5 pages.
  std::vector<VertexId> order(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](VertexId a, VertexId b) {
                      return run.result[a] > run.result[b];
                    });
  std::printf("top pages:");
  for (int i = 0; i < 5; ++i) {
    std::printf("  #%u (%.2f)", order[i], run.result[order[i]]);
  }
  std::printf("\n");

  // Validate against the sequential fixpoint.
  const auto truth = seq::PageRank(g, 0.85, 1e-9);
  double max_err = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_err = std::max(max_err, std::abs(run.result[v] - truth[v]));
  }
  std::printf("max score deviation vs sequential: %.2e\n", max_err);
  return max_err < 1e-2 ? 0 : 1;
}
