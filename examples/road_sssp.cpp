// Road-network shortest paths: the paper's `traffic` scenario. A
// high-diameter grid road network is partitioned into contiguous tiles;
// the SSSP PIE program runs Dijkstra per fragment (PEval) and incremental
// re-relaxation (IncEval) under AAP, and the run is compared against BSP to
// show where the adaptive model saves time on skewed tiles.
#include <cstdio>

#include "algos/sssp.h"
#include "core/sim_engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "partition/skew.h"

int main() {
  using namespace grape;

  GridOptions opts;
  opts.rows = 120;
  opts.cols = 120;
  opts.shortcut_fraction = 0.005;  // a few highways
  Graph g = MakeRoadGrid(opts);
  std::printf("road network: %u junctions, %llu road segments\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()));

  // Tile the map into 16 regions; one region (a dense downtown) is larger.
  auto placement = RangePartitioner().Assign(g, 16);
  placement = InjectSkew(g, placement, 16, 3.0, 11);
  Partition partition = BuildPartition(g, placement, 16);
  std::printf("tiles: skew r=%.2f\n", ComputeMetrics(partition).skew);

  const VertexId depot = 0;
  const auto truth = seq::Sssp(g, depot);

  for (ModeConfig mode : {ModeConfig::Bsp(), ModeConfig::Aap()}) {
    EngineConfig cfg;
    cfg.mode = mode;
    cfg.msg_latency = 1.0;
    cfg.work_unit_time = 0.01;
    cfg.min_round_time = 0.5;
    SimEngine<SsspProgram> engine(partition, SsspProgram(depot), cfg);
    auto run = engine.Run();
    uint64_t wrong = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (run.result[v] != truth[v]) ++wrong;
    }
    std::printf("%-4s makespan=%8.1f rounds=%5llu msgs=%6llu errors=%llu\n",
                ModeName(mode.mode).c_str(), run.stats.makespan,
                static_cast<unsigned long long>(run.stats.total_rounds()),
                static_cast<unsigned long long>(run.stats.total_msgs()),
                static_cast<unsigned long long>(wrong));
    if (wrong != 0) return 1;
  }
  std::printf("distances verified against sequential Dijkstra\n");
  return 0;
}
