// grape_cli — command-line driver for the library: load or generate a graph,
// pick an algorithm and a parallel model, run, print stats (and optionally
// the timing diagram). The fastest way to poke at AAP vs BSP/AP/SSP.
//
//   grape_cli --algo=cc --gen=rmat --vertices=4096 --edges=30000 \
//             --workers=16 --mode=aap --gantt
//   grape_cli --algo=sssp --graph=my_graph.txt --source=0 --mode=bsp
//
// Flags:
//   --algo=cc|sssp|bfs|pagerank      (default cc)
//   --direction=push|pull|auto       traversal direction for the dual-mode
//                                    programs (pagerank, and cc via label
//                                    propagation — giving the flag at all
//                                    switches cc to the label program for
//                                    every policy, so direction A/Bs
//                                    compare performance, not algorithms;
//                                    cc without the flag keeps union-find):
//                                    push scatters the
//                                    frontier's out-arcs, pull gathers over
//                                    the in-adjacency, auto switches per
//                                    round from the observed frontier
//                                    density (Ligra-style, with
//                                    hysteresis). pull/auto build a
//                                    pull-enabled partition: zero-copy
//                                    TransposeView on `.gcsr` inputs saved
//                                    with --save-in-adjacency, an in-memory
//                                    transpose otherwise; combines with
//                                    --chunk-arcs for fully out-of-core
//                                    reverse-edge streaming. (Replaces the
//                                    former --pull flag.)
//   --graph=PATH | --gen=rmat|grid|smallworld  (default gen=rmat)
//       *.gcsr inputs are memory-mapped (zero-copy binary store);
//       anything else is parsed as edge-list text
//   --save=PATH                      write the graph before running:
//                                    *.gcsr binary, else edge-list text
//   --save-in-adjacency              include the trailing in-adjacency
//                                    (reverse CSR) extension in a .gcsr save
//   --chunk-arcs=B                   out-of-core mode: fragments stream
//                                    adjacency in B-arc chunks from the
//                                    graph (madvise-managed for .gcsr
//                                    inputs) instead of materialising
//                                    per-fragment arc arrays
//   --threads=N                      ingestion worker threads (default 4):
//                                    parallel parse, CSR build, partition;
//                                    also the physical thread count of
//                                    --engine=threaded
//   --engine=sim|threaded|async      (default sim) sim runs the
//                                    discrete-event simulator (virtual
//                                    time, Gantt traces); threaded runs
//                                    the real thread-pool engine
//                                    (wall-clock timing, --threads
//                                    physical threads over --workers
//                                    virtual workers; no hsync); async
//                                    runs the barrier-free worklist
//                                    engine (no supersteps, push-only —
//                                    ignores --mode/--direction)
//   --async-chunk=N                  async engine: max buffered updates
//                                    applied per IncEval quantum
//                                    (default 64; 1 = per-vertex grain)
//   --async-delta=D                  async engine: delta-stepping bucket
//                                    width for SSSP/BFS priorities
//                                    (default 1; 0 = plain FIFO)
//   --async-staleness=S              async engine: bounded staleness —
//                                    max seconds an unapplied update may
//                                    wait before its worker is scheduled
//                                    ahead of the worklists (default
//                                    0.05; 0 disables)
//   --pin                            threaded engine: pin pool threads to
//                                    cores, round-robin over the usable
//                                    cpus in (node, package) order.
//                                    Advisory — refused pins leave
//                                    threads floating
//   --numa=0|1                       threaded engine: NUMA-local binding
//                                    of each worker's state to its
//                                    thread's node (default 1; only
//                                    active for pinned multi-node runs;
//                                    never changes results)
//   --direction-wallclock            feed the auto direction controller's
//                                    cost model measured wall time
//                                    instead of deterministic work units
//                                    (prices cache/NUMA/SIMD effects, but
//                                    auto decisions stop being
//                                    bit-reproducible across machines)
//   --vertices=N --edges=M --seed=S  generator parameters
//   --workers=N                      virtual workers (default 8)
//   --mode=bsp|ap|ssp|aap|hsync      (default aap)
//   --staleness=C                    SSP bound (default 3)
//   --partitioner=hash|range|ldg     (default ldg)
//   --skew=R                         inject skew r (default 1 = none)
//   --straggler=F                    slow worker 0 by factor F (default 1)
//   --source=V                       SSSP/BFS source (default 0)
//   --gantt                          print the run's timing diagram (both
//                                    engines; the threaded engine renders
//                                    it from the wall-clock trace spans)
//   --metrics-out=PATH               write the RunReport JSON (engine stats
//                                    + a full metrics-registry snapshot:
//                                    lid caches, pool wakeups, chunk
//                                    residency, barrier waits) to PATH
//   --trace-out=PATH                 record wall-clock trace spans during
//                                    the run and write Chrome trace-event
//                                    JSON to PATH (load in Perfetto or
//                                    chrome://tracing)
//   --perf                           wrap the ingest / partition / run
//                                    phases in hardware perf-counter scopes
//                                    (cycles, instructions, LLC); silently
//                                    skipped where perf_event_open is
//                                    unavailable (containers, non-Linux)
#include <cstdio>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "algos/bfs.h"
#include "graph/chunked_arc_source.h"
#include "algos/cc.h"
#include "algos/cc_pull.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "core/async_engine.h"
#include "core/sim_engine.h"
#include "core/threaded_engine.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/store/gcsr_store.h"
#include "obs/perf_counters.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "partition/partitioner.h"
#include "partition/skew.h"
#include "runtime/worker_pool.h"

namespace {

using namespace grape;

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "1";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string Get(const std::map<std::string, std::string>& f,
                const std::string& k, const std::string& def) {
  auto it = f.find(k);
  return it == f.end() ? def : it->second;
}

ModeConfig ParseMode(const std::string& m, int staleness) {
  if (m == "bsp") return ModeConfig::Bsp();
  if (m == "ap") return ModeConfig::Ap();
  if (m == "ssp") return ModeConfig::Ssp(staleness);
  if (m == "hsync") return ModeConfig::Hsync();
  return ModeConfig::Aap();
}

/// Observability outputs requested on the command line.
struct ObsOptions {
  std::string metrics_out;
  std::string trace_out;
  bool perf = false;
  bool gantt = false;
  std::string algo;
  uint64_t vertices = 0;
  uint64_t arcs = 0;
};

/// Writes the RunReport / trace artifacts a run produced. The partition's
/// lid-cache counters are published for the snapshot the report embeds.
void WriteObsOutputs(const ObsOptions& o, const Partition& p,
                     const char* engine_name, const RunStats& stats,
                     bool converged, double wall_seconds) {
  if (!o.metrics_out.empty()) {
    obs::ScopedPartitionMetrics lid_metrics(p);
    obs::RunReport report;
    report.SetGraph(o.vertices, o.arcs, p.num_fragments());
    report.AddRun(o.algo, engine_name, stats, converged, wall_seconds);
    const Status st = report.WriteFile(o.metrics_out);
    if (st.ok()) {
      std::printf("metrics        %s\n", o.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s: %s\n", o.metrics_out.c_str(),
                   st.ToString().c_str());
    }
  }
  if (!o.trace_out.empty()) {
    const auto events = obs::Tracer::Global().Collect();
    const Status st =
        obs::WriteChromeTraceFile(events, /*to_us=*/1e-3, o.trace_out);
    if (st.ok()) {
      std::printf("trace          %s (%zu events, %llu dropped)\n",
                  o.trace_out.c_str(), events.size(),
                  static_cast<unsigned long long>(
                      obs::Tracer::Global().dropped()));
    } else {
      std::fprintf(stderr, "cannot write %s: %s\n", o.trace_out.c_str(),
                   st.ToString().c_str());
    }
  }
}

template <typename Program>
int RunAndReportThreaded(const Partition& p, Program prog,
                         const EngineConfig& cfg, const ObsOptions& obs_opts) {
  ThreadedEngine<Program> engine(p, std::move(prog), cfg);
  std::optional<obs::PerfPhaseScope> perf;
  if (obs_opts.perf) perf.emplace("engine");
  auto r = engine.Run();
  perf.reset();
  std::printf("converged      %s\n", r.converged ? "yes" : "NO");
  if constexpr (DualModeProgram<Program>) {
    std::printf("direction      %llu push / %llu pull rounds, %llu switches\n",
                static_cast<unsigned long long>(r.stats.total_push_rounds()),
                static_cast<unsigned long long>(r.stats.total_pull_rounds()),
                static_cast<unsigned long long>(
                    r.stats.total_direction_switches()));
  }
  std::printf("wall           %.3f s\n", r.wall_seconds);
  std::printf("rounds         %llu total, %llu max/worker\n",
              static_cast<unsigned long long>(r.stats.total_rounds()),
              static_cast<unsigned long long>(r.stats.max_rounds()));
  std::printf("messages       %llu (%.2f MB)\n",
              static_cast<unsigned long long>(r.stats.total_msgs()),
              static_cast<double>(r.stats.total_bytes()) / 1048576.0);
  std::printf("thread b/i     %.3f / %.3f s over %zu threads\n",
              r.stats.total_thread_busy(), r.stats.total_thread_idle(),
              r.stats.threads.size());
  if (!r.stats.superstep_wall_ns.empty()) {
    uint64_t total_ns = 0;
    for (const uint64_t ns : r.stats.superstep_wall_ns) total_ns += ns;
    std::printf("supersteps     %llu (%.3f ms barrier-to-barrier)\n",
                static_cast<unsigned long long>(
                    r.stats.superstep_wall_ns.size()),
                static_cast<double>(total_ns) / 1e6);
  }
  if (r.stats.spurious_wakeups > 0) {
    std::printf("spurious wakes %llu\n",
                static_cast<unsigned long long>(r.stats.spurious_wakeups));
  }
  if (obs_opts.gantt) {
    // Same renderer the sim engine uses, over the wall-clock span stream
    // (main enabled the tracer when --gantt rides a threaded run).
    std::printf("\n%s", obs::GanttFromEvents(obs::Tracer::Global().Collect(),
                                             p.num_fragments(), 100)
                            .c_str());
  }
  WriteObsOutputs(obs_opts, p, "threaded", r.stats, r.converged,
                  r.wall_seconds);
  return r.converged ? 0 : 2;
}

template <typename Program>
int RunAndReportAsync(const Partition& p, Program prog,
                      const EngineConfig& cfg, const ObsOptions& obs_opts) {
  AsyncEngine<Program> engine(p, std::move(prog), cfg);
  std::optional<obs::PerfPhaseScope> perf;
  if (obs_opts.perf) perf.emplace("engine");
  auto r = engine.Run();
  perf.reset();
  std::printf("converged      %s\n", r.converged ? "yes" : "NO");
  std::printf("wall           %.3f s\n", r.wall_seconds);
  std::printf("quanta         %llu total, %llu max/worker\n",
              static_cast<unsigned long long>(r.stats.total_rounds()),
              static_cast<unsigned long long>(r.stats.max_rounds()));
  std::printf("messages       %llu (%.2f MB)\n",
              static_cast<unsigned long long>(r.stats.total_msgs()),
              static_cast<double>(r.stats.total_bytes()) / 1048576.0);
  std::printf("worklist       %llu pushes, %llu steals\n",
              static_cast<unsigned long long>(r.worklist_pushes),
              static_cast<unsigned long long>(r.worklist_steals));
  std::printf("thread b/i     %.3f / %.3f s over %zu threads\n",
              r.stats.total_thread_busy(), r.stats.total_thread_idle(),
              r.stats.threads.size());
  if (r.stats.spurious_wakeups > 0) {
    std::printf("spurious wakes %llu\n",
                static_cast<unsigned long long>(r.stats.spurious_wakeups));
  }
  if (obs_opts.gantt) {
    std::printf("\n%s", obs::GanttFromEvents(obs::Tracer::Global().Collect(),
                                             p.num_fragments(), 100)
                            .c_str());
  }
  WriteObsOutputs(obs_opts, p, "async", r.stats, r.converged, r.wall_seconds);
  return r.converged ? 0 : 2;
}

template <typename Program>
int RunAndReport(const Partition& p, Program prog, const EngineConfig& cfg,
                 const ObsOptions& obs_opts) {
  SimEngine<Program> engine(p, std::move(prog), cfg);
  std::optional<obs::PerfPhaseScope> perf;
  if (obs_opts.perf) perf.emplace("engine");
  auto r = engine.Run();
  perf.reset();
  std::printf("converged      %s\n", r.converged ? "yes" : "NO");
  if constexpr (DualModeProgram<Program>) {
    std::printf("direction      %llu push / %llu pull rounds, %llu switches\n",
                static_cast<unsigned long long>(r.stats.total_push_rounds()),
                static_cast<unsigned long long>(r.stats.total_pull_rounds()),
                static_cast<unsigned long long>(
                    r.stats.total_direction_switches()));
  }
  std::printf("makespan       %.1f time units\n", r.stats.makespan);
  std::printf("rounds         %llu total, %llu max/worker\n",
              static_cast<unsigned long long>(r.stats.total_rounds()),
              static_cast<unsigned long long>(r.stats.max_rounds()));
  std::printf("messages       %llu (%.2f MB)\n",
              static_cast<unsigned long long>(r.stats.total_msgs()),
              static_cast<double>(r.stats.total_bytes()) / 1048576.0);
  std::printf("busy/idle/susp %.0f / %.0f / %.0f\n", r.stats.total_busy(),
              r.stats.total_idle(), r.stats.total_suspended());
  if (obs_opts.gantt) {
    std::printf("\n%s", r.trace
                            .ToGantt(static_cast<uint32_t>(
                                         r.stats.workers.size()),
                                     100)
                            .c_str());
  }
  WriteObsOutputs(obs_opts, p, "sim", r.stats, r.converged,
                  r.stats.makespan);
  return r.converged ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = ParseFlags(argc, argv);
  if (flags.count("help")) {
    std::printf("see the header of examples/grape_cli.cpp for flags\n");
    return 0;
  }

  // ---- observability ----
  ObsOptions obs_opts;
  obs_opts.metrics_out = Get(flags, "metrics-out", "");
  obs_opts.trace_out = Get(flags, "trace-out", "");
  obs_opts.perf = flags.count("perf") > 0;
  obs_opts.gantt = flags.count("gantt") > 0;
  // Enable early so the perf phase scopes' kPhase spans (ingest, partition)
  // land in the exported trace alongside the engine's spans.
  if (!obs_opts.trace_out.empty()) obs::Tracer::Global().Enable();
  if (obs_opts.perf && !obs::PerfAvailable()) {
    std::fprintf(stderr,
                 "perf counters unavailable (perf_event_open denied or "
                 "unsupported); --perf phases will be skipped\n");
  }
  std::optional<obs::PerfPhaseScope> perf_phase;
  if (obs_opts.perf) perf_phase.emplace("ingest");

  // ---- graph ----
  // The backing storage is either an owning Graph or an MmapGraph (for
  // `.gcsr` inputs, which are consumed zero-copy); everything downstream
  // works on the GraphView.
  WorkerPool pool(std::max<uint32_t>(
      1, static_cast<uint32_t>(std::stoul(Get(flags, "threads", "4")))));
  Graph g;
  StatusOr<MmapGraph> mapped = Status::NotFound("no .gcsr input");
  GraphView view;
  const std::string path = Get(flags, "graph", "");
  const VertexId n =
      static_cast<VertexId>(std::stoul(Get(flags, "vertices", "4096")));
  const uint64_t m_edges = std::stoull(Get(flags, "edges", "30000"));
  const uint64_t seed = std::stoull(Get(flags, "seed", "1"));
  if (path.ends_with(".gcsr")) {
    mapped = MmapGraph::Open(path);
    if (!mapped.ok()) {
      std::fprintf(stderr, "cannot mmap %s: %s\n", path.c_str(),
                   mapped.status().ToString().c_str());
      return 1;
    }
    view = mapped.value().View();
  } else if (!path.empty()) {
    auto loaded = LoadEdgeList(path, &pool);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(loaded.value());
  } else {
    const std::string gen = Get(flags, "gen", "rmat");
    if (gen == "grid") {
      GridOptions o;
      o.rows = o.cols = static_cast<VertexId>(std::max<double>(
          2.0, std::sqrt(static_cast<double>(n))));
      o.seed = seed;
      g = MakeRoadGrid(o);
    } else if (gen == "smallworld") {
      SmallWorldOptions o;
      o.num_vertices = n;
      o.seed = seed;
      g = MakeSmallWorld(o);
    } else {
      RmatOptions o;
      o.num_vertices = n;
      o.num_edges = m_edges;
      o.directed = false;
      o.weighted = true;
      o.seed = seed;
      g = MakeRmat(o, &pool);
    }
  }
  if (!path.ends_with(".gcsr")) view = g.View();
  perf_phase.reset();
  std::printf("graph          %u vertices, %llu arcs\n", view.num_vertices(),
              static_cast<unsigned long long>(view.num_arcs()));

  // ---- optional save (binary .gcsr or edge-list text) ----
  const std::string save = Get(flags, "save", "");
  if (!save.empty()) {
    SaveOptions sopts;
    sopts.include_in_adjacency = flags.count("save-in-adjacency") > 0;
    const Status st = save.ends_with(".gcsr") ? SaveBinary(view, save, sopts)
                                              : SaveEdgeList(view, save);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot save %s: %s\n", save.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf("saved          %s\n", save.c_str());
  }

  // ---- partition ----
  if (obs_opts.perf) perf_phase.emplace("partition");
  const FragmentId workers =
      static_cast<FragmentId>(std::stoul(Get(flags, "workers", "8")));
  auto partitioner = MakePartitioner(Get(flags, "partitioner", "ldg"));
  auto placement = partitioner->Assign(view, workers);
  const double skew = std::stod(Get(flags, "skew", "1"));
  if (skew > 1.0) placement = InjectSkew(view, placement, workers, skew, seed);
  // Out-of-core mode: fragments stream arcs chunk-by-chunk instead of
  // materialising them (madvise-managed windows on mmapped .gcsr inputs).
  const uint64_t chunk_arcs =
      std::stoull(Get(flags, "chunk-arcs", "0"));
  std::unique_ptr<ChunkedArcSource> arc_source;
  PartitionOptions popts;
  if (chunk_arcs > 0) {
    arc_source = mapped.ok()
                     ? std::make_unique<ChunkedArcSource>(mapped.value(),
                                                          chunk_arcs)
                     : std::make_unique<ChunkedArcSource>(view, chunk_arcs);
    popts.arc_source = arc_source.get();
  }
  // Direction policy: pull and auto need the transpose — zero-copy off the
  // store's in-adjacency extension when present, an in-memory transpose
  // otherwise — streamed through a second chunked source when --chunk-arcs
  // is set.
  if (flags.count("pull") > 0) {
    std::fprintf(stderr,
                 "--pull was replaced by --direction=pull|auto (works with "
                 "--algo=pagerank and --algo=cc)\n");
    return 1;
  }
  const std::string algo = Get(flags, "algo", "cc");
  // An explicit --direction selects the dual-mode program for cc (label
  // propagation under every policy, so push/pull/auto A/Bs compare the
  // same algorithm — the direction is purely a performance choice); cc
  // without the flag keeps the classic union-find program.
  const bool direction_given = flags.count("direction") > 0;
  const std::string direction = Get(flags, "direction", "push");
  if (direction != "push" && direction != "pull" && direction != "auto") {
    std::fprintf(stderr, "--direction must be push, pull or auto\n");
    return 1;
  }
  const bool dual_algo = algo == "pagerank" || algo == "cc";
  if (direction_given && !dual_algo) {
    std::fprintf(stderr, "--direction only applies to --algo=pagerank|cc\n");
    return 1;
  }
  const bool dual_cc = algo == "cc" && direction_given;
  const bool pull = direction != "push" && dual_algo;
  Graph transpose_storage;
  GraphView transpose_view;
  std::unique_ptr<ChunkedArcSource> in_arc_source;
  if (pull) {
    if (mapped.ok() && mapped.value().has_in_adjacency()) {
      transpose_view = mapped.value().TransposeView();
    } else {
      transpose_storage = TransposeGraph(view);
      transpose_view = transpose_storage.View();
    }
    if (chunk_arcs > 0) {
      const auto backend = mapped.ok() && mapped.value().has_in_adjacency()
                               ? ChunkedArcSource::Backend::kMapped
                               : ChunkedArcSource::Backend::kMemory;
      in_arc_source = std::make_unique<ChunkedArcSource>(
          transpose_view, chunk_arcs, backend);
      popts.in_arc_source = in_arc_source.get();
    } else {
      popts.in_adjacency = &transpose_view;
    }
  }
  Partition p = BuildPartition(view, std::move(placement), workers, &pool,
                               popts);
  perf_phase.reset();
  auto metrics = ComputeMetrics(p);
  std::printf("partition      %u workers (%s), skew r=%.2f, cut=%.1f%%%s%s\n",
              workers, partitioner->name().c_str(), metrics.skew,
              100.0 * metrics.edge_cut_fraction,
              chunk_arcs > 0 ? ", streaming arcs" : "",
              pull ? ", pull in-adjacency" : "");
  if (dual_algo) std::printf("direction pol. %s\n", direction.c_str());

  // ---- engine ----
  const std::string engine = Get(flags, "engine", "sim");
  if (engine != "sim" && engine != "threaded" && engine != "async") {
    std::fprintf(stderr, "--engine must be sim, threaded or async\n");
    return 1;
  }
  if (engine == "async" && direction != "push") {
    // The async engine is push-only: barrier-free interleaving cannot keep
    // a gather kernel's neighbour reads coherent.
    std::fprintf(stderr, "--engine=async supports --direction=push only\n");
    return 1;
  }
  EngineConfig cfg;
  cfg.mode = ParseMode(Get(flags, "mode", "aap"),
                       std::stoi(Get(flags, "staleness", "3")));
  if (engine == "threaded" && cfg.mode.mode == Mode::kHsync) {
    std::fprintf(stderr, "--engine=threaded does not support --mode=hsync\n");
    return 1;
  }
  cfg.direction.mode = direction == "pull" ? DirectionConfig::Mode::kPull
                       : direction == "auto" ? DirectionConfig::Mode::kAuto
                                             : DirectionConfig::Mode::kPush;
  cfg.direction.measured_wall_clock = flags.count("direction-wallclock") > 0;
  cfg.msg_latency = 1.0;
  cfg.work_unit_time = 0.01;
  cfg.min_round_time = 0.5;
  cfg.num_threads = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::stoul(Get(flags, "threads", "4"))));
  cfg.pin_threads = flags.count("pin") > 0;
  cfg.numa_local = Get(flags, "numa", "1") != "0";
  cfg.async_chunk = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::stoul(Get(flags, "async-chunk", "64"))));
  cfg.async_delta = std::stod(Get(flags, "async-delta", "1"));
  cfg.async_staleness_sec = std::stod(Get(flags, "async-staleness", "0.05"));
  const double straggler = std::stod(Get(flags, "straggler", "1"));
  if (straggler > 1.0) {
    cfg.speed_factors.assign(workers, 1.0);
    cfg.speed_factors[0] = straggler;
  }
  std::printf("model          %s (%s engine%s%s)\n",
              engine == "async" ? "barrier-free"
                                : ModeName(cfg.mode.mode).c_str(),
              engine.c_str(),
              engine == "threaded" && cfg.pin_threads ? ", pinned" : "",
              engine == "threaded" && cfg.pin_threads && cfg.numa_local
                  ? ", numa-local"
                  : "");

  // ---- run ----
  obs_opts.algo = algo;
  obs_opts.vertices = view.num_vertices();
  obs_opts.arcs = view.num_arcs();
  // The wall-clock engines' Gantt is rendered from the span stream, so
  // --gantt alone needs the tracer on for them.
  if (obs_opts.gantt && engine != "sim") obs::Tracer::Global().Enable();
  const VertexId source =
      static_cast<VertexId>(std::stoul(Get(flags, "source", "0")));
  const auto run = [&](auto prog) {
    if (engine == "threaded") {
      return RunAndReportThreaded(p, std::move(prog), cfg, obs_opts);
    }
    if (engine == "async") {
      return RunAndReportAsync(p, std::move(prog), cfg, obs_opts);
    }
    return RunAndReport(p, std::move(prog), cfg, obs_opts);
  };
  if (algo == "sssp") {
    return run(SsspProgram(source));
  }
  if (algo == "bfs") {
    return run(BfsProgram(source));
  }
  if (algo == "pagerank") {
    // The dual-mode program serves every direction; the engine picks the
    // kernel per round under --direction=auto.
    return run(PageRankProgram(0.85, 1e-6));
  }
  // CC: label propagation whenever --direction was given (every policy
  // runs the same algorithm, so A/Bing directions compares performance,
  // not semantics — on directed inputs label propagation computes
  // min-over-ancestors, not weak connectivity); the classic union-find
  // program otherwise.
  if (dual_cc) {
    return run(CcPullProgram{});
  }
  return run(CcProgram{});
}
