// Quickstart: parallelize a sequential graph algorithm with a PIE program.
//
// This example computes connected components of a small-world graph with the
// stock CcProgram under the AAP model, then checks the answer against the
// sequential union-find ground truth. It is the "hello world" of the
// library: build a graph, partition it, run a PIE program on an engine.
#include <cstdio>

#include "algos/cc.h"
#include "core/sim_engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"

int main() {
  using namespace grape;

  // 1. A graph (load your own with LoadEdgeList(); here: synthetic).
  SmallWorldOptions opts;
  opts.num_vertices = 5000;
  opts.k = 6;
  opts.rewire_p = 0.02;
  Graph g = MakeSmallWorld(opts);
  std::printf("graph: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // 2. Partition it across 8 virtual workers (edge-cut, LDG streaming).
  Partition partition = LdgPartitioner().Partition_(g, 8);
  auto metrics = ComputeMetrics(partition);
  std::printf("partition: skew r=%.2f, edge-cut=%.1f%%\n", metrics.skew,
              100.0 * metrics.edge_cut_fraction);

  // 3. Run the CC PIE program (PEval = local components, IncEval = min-cid
  //    merges) under the adaptive asynchronous parallel model.
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  SimEngine<CcProgram> engine(partition, CcProgram{}, cfg);
  auto run = engine.Run();

  std::printf("converged=%s rounds=%llu messages=%llu makespan=%.1f\n",
              run.converged ? "yes" : "no",
              static_cast<unsigned long long>(run.stats.total_rounds()),
              static_cast<unsigned long long>(run.stats.total_msgs()),
              run.stats.makespan);

  // 4. Validate against the sequential algorithm.
  const auto truth = seq::ConnectedComponents(g);
  uint64_t mismatches = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (run.result[v] != truth[v]) ++mismatches;
  }
  std::printf("validation: %llu mismatches vs sequential union-find\n",
              static_cast<unsigned long long>(mismatches));
  return mismatches == 0 ? 0 : 1;
}
