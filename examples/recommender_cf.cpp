// Recommender training: the paper's movieLens/Netflix scenario. A planted
// low-rank user-item rating graph is factorised by the CF PIE program
// (mini-batched SGD with shared product factors) under AAP with bounded
// staleness, and a few recommendations are printed.
#include <algorithm>
#include <cstdio>

#include "algos/cf.h"
#include "core/sim_engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"

int main() {
  using namespace grape;

  BipartiteOptions opts;
  opts.num_users = 2000;
  opts.num_items = 300;
  opts.num_ratings = 40000;
  Graph g = MakeBipartiteRatings(opts);
  std::printf("ratings: %u users x %u items, %llu ratings\n", opts.num_users,
              opts.num_items,
              static_cast<unsigned long long>(g.num_edges()));

  Partition partition = HashPartitioner().Partition_(g, 12);
  CfProgram::Options cf;
  cf.max_epochs = 20;
  EngineConfig cfg;
  cfg.mode = ModeConfig::Aap();
  cfg.mode.bounded_staleness = true;  // CF needs it (Section 5.3 Remark)
  cfg.mode.staleness_bound = 3;
  SimEngine<CfProgram> engine(partition, CfProgram(g, cf), cfg);
  auto run = engine.Run();
  std::printf("trained: epochs=%llu train RMSE=%.3f test RMSE=%.3f\n",
              static_cast<unsigned long long>(run.result.total_epochs),
              run.result.train_rmse, run.result.test_rmse);

  // Recommend 3 items for user 0: highest predicted unrated items.
  const auto& f = run.result.factors;
  auto predict = [&](VertexId u, VertexId p) {
    float s = 0;
    for (uint32_t k = 0; k < kCfRank; ++k) s += f[u][k] * f[p][k];
    return s;
  };
  std::vector<std::pair<double, VertexId>> scored;
  for (VertexId p = opts.num_users; p < g.num_vertices(); ++p) {
    bool rated = false;
    for (const Arc& a : g.OutEdges(0)) rated |= (a.dst == p);
    if (!rated) scored.push_back({predict(0, p), p});
  }
  std::sort(scored.rbegin(), scored.rend());
  std::printf("user 0 recommendations:");
  for (size_t i = 0; i < 3 && i < scored.size(); ++i) {
    std::printf("  item %u (%.2f)", scored[i].second - opts.num_users,
                scored[i].first);
  }
  std::printf("\n");
  return run.result.test_rmse < 1.5 ? 0 : 1;
}
